(* Des.Shard: conservative synchronized-window parallel DES, and the
   K-invariance of Cluster.Sharded built on top of it. *)

let us = Des.Time.us
let ms = Des.Time.ms

(* --- shards = 1 degenerates to the plain engine ------------------------ *)

let single_shard_matches_engine () =
  let trace_of run =
    let trace = ref [] in
    let note tag engine () =
      trace := (tag, Des.Engine.now engine) :: !trace
    in
    run note;
    List.rev !trace
  in
  let plain =
    trace_of (fun note ->
        let e = Des.Engine.create () in
        ignore (Des.Engine.schedule e ~at:(us 30) (note "b" e));
        ignore (Des.Engine.schedule e ~at:(us 10) (note "a" e));
        ignore (Des.Engine.schedule e ~at:(us 30) (note "c" e));
        Des.Engine.run e ~until:(ms 1))
  in
  let sharded =
    trace_of (fun note ->
        let t = Des.Shard.create ~shards:1 ~lookahead:(us 5) in
        let e = Des.Shard.engine t 0 in
        ignore (Des.Engine.schedule e ~at:(us 30) (note "b" e));
        ignore (Des.Engine.schedule e ~at:(us 10) (note "a" e));
        ignore (Des.Engine.schedule e ~at:(us 30) (note "c" e));
        Des.Shard.run t ~until:(ms 1);
        Des.Shard.shutdown t)
  in
  Alcotest.(check (list (pair string int)))
    "same trace" plain sharded

(* --- cross-shard post at the window boundary --------------------------- *)

(* Lookahead 100 us, windows [0,100), [100,200), ... An event at t=50 on
   shard 0 posts a remote effect at exactly t=150 — the earliest legal
   arrival lands in the *next* window, and must fire at exactly 150 on
   shard 1, interleaved after shard 1's own earlier-scheduled event at
   the same timestamp (barrier posting assigns later sequence numbers
   than construction-time scheduling). *)
let cross_shard_barrier_boundary () =
  let t = Des.Shard.create ~shards:2 ~lookahead:(us 100) in
  let e0 = Des.Shard.engine t 0 and e1 = Des.Shard.engine t 1 in
  let trace = ref [] in
  let note tag engine () =
    trace := (tag, Des.Engine.now engine) :: !trace
  in
  ignore (Des.Engine.schedule e1 ~at:(us 150) (note "local@150" e1));
  ignore (Des.Engine.schedule e1 ~at:(us 160) (note "local@160" e1));
  ignore
    (Des.Engine.schedule e0 ~at:(us 50) (fun () ->
         Des.Shard.post_remote t ~src:0 ~dst:1 ~at:(us 150)
           (note "remote@150" e1)));
  Des.Shard.run t ~until:(ms 1);
  Des.Shard.shutdown t;
  Alcotest.(check (list (pair string int)))
    "exact arrival time and same-timestamp order"
    [ ("local@150", us 150); ("remote@150", us 150); ("local@160", us 160) ]
    (List.rev !trace);
  let stats = Des.Shard.stats t in
  Alcotest.(check int) "one cross-shard post" 1 stats.Des.Shard.remote_posts

(* A second [run] phase must pick up exactly where the first stopped:
   a remote entry posted in phase 1 for a phase-2 timestamp survives
   the inter-phase barrier. *)
let cross_shard_across_phases () =
  let t = Des.Shard.create ~shards:2 ~lookahead:(us 100) in
  let e0 = Des.Shard.engine t 0 and e1 = Des.Shard.engine t 1 in
  let fired = ref None in
  ignore
    (Des.Engine.schedule e0 ~at:(us 380) (fun () ->
         Des.Shard.post_remote t ~src:0 ~dst:1 ~at:(us 700) (fun () ->
             fired := Some (Des.Engine.now e1))));
  Des.Shard.run t ~until:(us 400);
  Alcotest.(check (option int)) "not yet" None !fired;
  Des.Shard.run t ~until:(ms 1);
  Des.Shard.shutdown t;
  Alcotest.(check (option int)) "fired in phase 2" (Some (us 700)) !fired

(* --- lookahead violations are loud ------------------------------------- *)

let lookahead_violation_fails () =
  let t = Des.Shard.create ~shards:2 ~lookahead:(us 100) in
  let e0 = Des.Shard.engine t 0 in
  (* An arrival inside the window that produced it: t=50 posting for
     t=60 < horizon 100. A silently-late delivery would corrupt the
     destination's causal order, so the barrier must refuse. *)
  ignore
    (Des.Engine.schedule e0 ~at:(us 50) (fun () ->
         Des.Shard.post_remote t ~src:0 ~dst:1 ~at:(us 60) ignore));
  let raised =
    match Des.Shard.run t ~until:(ms 1) with
    | () -> false
    | exception Failure _ -> true
  in
  Des.Shard.shutdown t;
  Alcotest.(check bool) "barrier refuses late entry" true raised

let create_validates () =
  let invalid f =
    match f () with
    | (_ : Des.Shard.t) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "shards = 0" true
    (invalid (fun () -> Des.Shard.create ~shards:0 ~lookahead:(us 1)));
  Alcotest.(check bool) "no lookahead with 2 shards" true
    (invalid (fun () -> Des.Shard.create ~shards:2 ~lookahead:0))

(* --- worker exceptions surface at the barrier -------------------------- *)

let shard_exception_reraised () =
  let t = Des.Shard.create ~shards:2 ~lookahead:(us 100) in
  let e1 = Des.Shard.engine t 1 in
  ignore
    (Des.Engine.schedule e1 ~at:(us 10) (fun () -> failwith "shard 1 boom"));
  let raised =
    match Des.Shard.run t ~until:(ms 1) with
    | () -> false
    | exception Failure msg -> msg = "shard 1 boom"
  in
  Des.Shard.shutdown t;
  Alcotest.(check bool) "callback exception re-raised" true raised

(* --- Cluster.Sharded: results are a pure function of (n, seed) --------- *)

(* The tentpole invariant: the per-client CSV summary — sends, responses,
   active-flow census — is byte-identical whether the fleet ran on one
   engine or four, across random (seed, size) workloads. The seed
   rotates the flow→client map and shifts the flow port space, so each
   case is a different simulation. Runs are small (hundreds of flows) so
   the property stays fast; the CI shard-smoke job covers the large-n
   case. *)
let sharded_flows_k_invariant =
  QCheck.Test.make ~count:4 ~name:"Sharded.flows CSV identical at K=1 and K=4"
    QCheck.(pair (int_range 0 100_000) (int_range 65 700))
    (fun (seed, n) ->
      let csv shards =
        (Cluster.Sharded.flows ~shards ~seed ~n ()).Cluster.Sharded.csv
      in
      let one = csv 1 and four = csv 4 in
      if one <> four then
        QCheck.Test.fail_reportf "CSV diverged at seed=%d n=%d:@.%s@.vs@.%s"
          seed n one four;
      true)

let sharded_flows_two_equals_three () =
  (* Shard counts that do not divide the client count exercise the
     uneven-partition paths. *)
  let csv shards =
    (Cluster.Sharded.flows ~shards ~n:257 ()).Cluster.Sharded.csv
  in
  Alcotest.(check string) "K=2 vs K=3" (csv 2) (csv 3)

let () =
  Alcotest.run "shard"
    [
      ( "windows",
        [
          Alcotest.test_case "K=1 matches plain engine" `Quick
            single_shard_matches_engine;
          Alcotest.test_case "barrier-boundary arrival" `Quick
            cross_shard_barrier_boundary;
          Alcotest.test_case "remote entry across run phases" `Quick
            cross_shard_across_phases;
          Alcotest.test_case "lookahead violation fails" `Quick
            lookahead_violation_fails;
          Alcotest.test_case "create validates" `Quick create_validates;
          Alcotest.test_case "shard exception re-raised" `Quick
            shard_exception_reraised;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "K=2 equals K=3 (uneven partition)" `Slow
            sharded_flows_two_equals_three;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ sharded_flows_k_invariant ] );
    ]
