(* Des.Shard: conservative synchronized-window parallel DES, and the
   K-invariance of Cluster.Sharded built on top of it. *)

let us = Des.Time.us
let ms = Des.Time.ms

(* --- shards = 1 degenerates to the plain engine ------------------------ *)

let single_shard_matches_engine () =
  let trace_of run =
    let trace = ref [] in
    let note tag engine () =
      trace := (tag, Des.Engine.now engine) :: !trace
    in
    run note;
    List.rev !trace
  in
  let plain =
    trace_of (fun note ->
        let e = Des.Engine.create () in
        ignore (Des.Engine.schedule e ~at:(us 30) (note "b" e));
        ignore (Des.Engine.schedule e ~at:(us 10) (note "a" e));
        ignore (Des.Engine.schedule e ~at:(us 30) (note "c" e));
        Des.Engine.run e ~until:(ms 1))
  in
  let sharded =
    trace_of (fun note ->
        let t = Des.Shard.create ~shards:1 ~lookahead:(us 5) () in
        let e = Des.Shard.engine t 0 in
        ignore (Des.Engine.schedule e ~at:(us 30) (note "b" e));
        ignore (Des.Engine.schedule e ~at:(us 10) (note "a" e));
        ignore (Des.Engine.schedule e ~at:(us 30) (note "c" e));
        Des.Shard.run t ~until:(ms 1);
        Des.Shard.shutdown t)
  in
  Alcotest.(check (list (pair string int)))
    "same trace" plain sharded

(* --- cross-shard post at the window boundary --------------------------- *)

(* Lookahead 100 us, windows [0,100), [100,200), ... An event at t=50 on
   shard 0 posts a remote effect at exactly t=150 — the earliest legal
   arrival lands in the *next* window, and must fire at exactly 150 on
   shard 1, interleaved after shard 1's own earlier-scheduled event at
   the same timestamp (barrier posting assigns later sequence numbers
   than construction-time scheduling). *)
let cross_shard_barrier_boundary () =
  let t = Des.Shard.create ~shards:2 ~lookahead:(us 100) () in
  let e0 = Des.Shard.engine t 0 and e1 = Des.Shard.engine t 1 in
  let trace = ref [] in
  let note tag engine () =
    trace := (tag, Des.Engine.now engine) :: !trace
  in
  ignore (Des.Engine.schedule e1 ~at:(us 150) (note "local@150" e1));
  ignore (Des.Engine.schedule e1 ~at:(us 160) (note "local@160" e1));
  ignore
    (Des.Engine.schedule e0 ~at:(us 50) (fun () ->
         Des.Shard.post_remote t ~src:0 ~dst:1 ~at:(us 150)
           (note "remote@150" e1)));
  Des.Shard.run t ~until:(ms 1);
  Des.Shard.shutdown t;
  Alcotest.(check (list (pair string int)))
    "exact arrival time and same-timestamp order"
    [ ("local@150", us 150); ("remote@150", us 150); ("local@160", us 160) ]
    (List.rev !trace);
  let stats = Des.Shard.stats t in
  Alcotest.(check int) "one cross-shard post" 1 stats.Des.Shard.remote_posts

(* A second [run] phase must pick up exactly where the first stopped:
   a remote entry posted in phase 1 for a phase-2 timestamp survives
   the inter-phase barrier. *)
let cross_shard_across_phases () =
  let t = Des.Shard.create ~shards:2 ~lookahead:(us 100) () in
  let e0 = Des.Shard.engine t 0 and e1 = Des.Shard.engine t 1 in
  let fired = ref None in
  ignore
    (Des.Engine.schedule e0 ~at:(us 380) (fun () ->
         Des.Shard.post_remote t ~src:0 ~dst:1 ~at:(us 700) (fun () ->
             fired := Some (Des.Engine.now e1))));
  Des.Shard.run t ~until:(us 400);
  Alcotest.(check (option int)) "not yet" None !fired;
  Des.Shard.run t ~until:(ms 1);
  Des.Shard.shutdown t;
  Alcotest.(check (option int)) "fired in phase 2" (Some (us 700)) !fired

(* --- adaptive event-horizon widening ----------------------------------- *)

(* A multi-second event gap must be crossed in O(1) windows: with every
   inbox empty the fleet's next-event minimum bounds when anything can
   happen anywhere, so the window jumps straight to [m + L] instead of
   grinding through span/L fixed-width barriers. 6 s at L = 100 us is
   60k fixed windows; adaptive needs a handful. *)
let adaptive_idle_gap () =
  let t = Des.Shard.create ~shards:2 ~lookahead:(us 100) () in
  let e0 = Des.Shard.engine t 0 and e1 = Des.Shard.engine t 1 in
  let fired = ref 0 in
  ignore (Des.Engine.schedule e0 ~at:(us 10) (fun () -> incr fired));
  ignore (Des.Engine.schedule e1 ~at:(Des.Time.sec 5) (fun () -> incr fired));
  Des.Shard.run t ~until:(Des.Time.sec 6);
  Des.Shard.shutdown t;
  let stats = Des.Shard.stats t in
  Alcotest.(check int) "both events fired" 2 !fired;
  if stats.Des.Shard.windows > 8 then
    Alcotest.failf "5 s idle gap took %d windows, expected O(1)"
      stats.Des.Shard.windows;
  if stats.Des.Shard.skipped_windows < 10_000 then
    Alcotest.failf "only %d fixed-width windows skipped, expected tens of \
                    thousands"
      stats.Des.Shard.skipped_windows

(* Regression: with the horizon widened to [min_next_event + L], a
   remote post for exactly that instant sits on the window boundary —
   the earliest legal arrival — and must be accepted and fired in the
   next window, not rejected as a lookahead violation. *)
let widened_horizon_boundary_post () =
  let t = Des.Shard.create ~shards:2 ~lookahead:(us 100) () in
  let e0 = Des.Shard.engine t 0 and e1 = Des.Shard.engine t 1 in
  let fired = ref None in
  let gap_event = ms 10 in
  ignore
    (Des.Engine.schedule e0 ~at:gap_event (fun () ->
         (* The widened window is [.., gap_event + L): gap_event was the
            fleet minimum at the preceding barrier. *)
         Des.Shard.post_remote t ~src:0 ~dst:1
           ~at:(gap_event + us 100)
           (fun () -> fired := Some (Des.Engine.now e1))));
  Des.Shard.run t ~until:(ms 20);
  Des.Shard.shutdown t;
  Alcotest.(check (option int))
    "post at exactly min_next_event + L fires there"
    (Some (gap_event + us 100))
    !fired

(* --- the tagged fast path allocates nothing once warm ------------------ *)

let post_remote_tagged_zero_alloc () =
  let t = Des.Shard.create ~shards:2 ~lookahead:(us 100) () in
  let e0 = Des.Shard.engine t 0 in
  let delivered = ref 0 in
  Des.Shard.set_sink t ~dst:1 (fun _tag _arg -> incr delivered);
  let payload = Obj.repr 0 in
  let burst = 10_000 in
  let post at =
    for _ = 1 to burst do
      Des.Shard.post_remote_tagged t ~src:0 ~dst:1 ~at ~tag:7 payload
    done
  in
  (* Warm-up grows the (0, 1) lanes to the burst size; the barrier drain
     keeps that capacity (occupancy matched it, so no shrink). *)
  ignore (Des.Engine.schedule e0 ~at:(us 10) (fun () -> post (us 200)));
  Des.Shard.run t ~until:(us 500);
  Alcotest.(check int) "warm-up delivered" burst !delivered;
  (* Same burst again on warm lanes, with the minor-allocation counter
     read around it (on shard 0's own domain, where the posts run). *)
  let delta = ref infinity in
  ignore
    (Des.Engine.schedule e0 ~at:(us 600) (fun () ->
         let w0 = Gc.minor_words () in
         post (us 800);
         delta := Gc.minor_words () -. w0));
  Des.Shard.run t ~until:(ms 1);
  Des.Shard.shutdown t;
  Alcotest.(check int) "all delivered" (2 * burst) !delivered;
  if !delta > 64.0 then
    Alcotest.failf "post_remote_tagged allocated %.0f minor words over %d \
                    warm posts"
      !delta burst;
  let stats = Des.Shard.stats t in
  (* The satellite gauge: the burst's lane high-water mark is recorded. *)
  if stats.Des.Shard.inbox_peak_bytes < burst * 3 * 8 then
    Alcotest.failf "inbox_peak_bytes %d below the burst footprint"
      stats.Des.Shard.inbox_peak_bytes

(* --- lookahead violations are loud ------------------------------------- *)

let lookahead_violation_fails () =
  let t = Des.Shard.create ~shards:2 ~lookahead:(us 100) () in
  let e0 = Des.Shard.engine t 0 in
  (* An arrival inside the window that produced it: t=50 posting for
     t=60 < horizon 100. A silently-late delivery would corrupt the
     destination's causal order, so the barrier must refuse. *)
  ignore
    (Des.Engine.schedule e0 ~at:(us 50) (fun () ->
         Des.Shard.post_remote t ~src:0 ~dst:1 ~at:(us 60) ignore));
  let raised =
    match Des.Shard.run t ~until:(ms 1) with
    | () -> false
    | exception Failure _ -> true
  in
  Des.Shard.shutdown t;
  Alcotest.(check bool) "barrier refuses late entry" true raised

let create_validates () =
  let invalid f =
    match f () with
    | (_ : Des.Shard.t) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "shards = 0" true
    (invalid (fun () -> Des.Shard.create ~shards:0 ~lookahead:(us 1) ()));
  Alcotest.(check bool) "no lookahead with 2 shards" true
    (invalid (fun () -> Des.Shard.create ~shards:2 ~lookahead:0 ()))

(* --- worker exceptions surface at the barrier -------------------------- *)

let shard_exception_reraised () =
  let t = Des.Shard.create ~shards:2 ~lookahead:(us 100) () in
  let e1 = Des.Shard.engine t 1 in
  ignore
    (Des.Engine.schedule e1 ~at:(us 10) (fun () -> failwith "shard 1 boom"));
  let raised =
    match Des.Shard.run t ~until:(ms 1) with
    | () -> false
    | exception Failure msg -> msg = "shard 1 boom"
  in
  Des.Shard.shutdown t;
  Alcotest.(check bool) "callback exception re-raised" true raised

(* --- Cluster.Sharded: results are a pure function of (n, seed) --------- *)

(* The tentpole invariant: the per-client CSV summary — sends, responses,
   active-flow census — is byte-identical whether the fleet ran on one
   engine or four, across random (seed, size) workloads. The seed
   rotates the flow→client map and shifts the flow port space, so each
   case is a different simulation. Runs are small (hundreds of flows) so
   the property stays fast; the CI shard-smoke job covers the large-n
   case. *)
let sharded_flows_k_invariant =
  QCheck.Test.make ~count:4 ~name:"Sharded.flows CSV identical at K=1 and K=4"
    QCheck.(pair (int_range 0 100_000) (int_range 65 700))
    (fun (seed, n) ->
      let csv shards =
        (Cluster.Sharded.flows ~shards ~seed ~n ()).Cluster.Sharded.csv
      in
      let one = csv 1 and four = csv 4 in
      if one <> four then
        QCheck.Test.fail_reportf "CSV diverged at seed=%d n=%d:@.%s@.vs@.%s"
          seed n one four;
      true)

(* Adaptive widening must be invisible in the results: same (seed, n, K)
   with adaptivity on and off produces the same CSV byte-for-byte; only
   the window count differs. *)
let sharded_flows_adaptivity_invariant =
  QCheck.Test.make ~count:3
    ~name:"Sharded.flows CSV identical with adaptivity on and off"
    QCheck.(
      triple (int_range 0 100_000) (int_range 65 500) (int_range 2 4))
    (fun (seed, n, shards) ->
      let csv adaptive =
        (Cluster.Sharded.flows ~shards ~adaptive ~seed ~n ())
          .Cluster.Sharded.csv
      in
      if csv true <> csv false then
        QCheck.Test.fail_reportf
          "CSV diverged between adaptive and fixed at seed=%d n=%d K=%d" seed
          n shards;
      true)

let sharded_flows_two_equals_three () =
  (* Shard counts that do not divide the client count exercise the
     uneven-partition paths. *)
  let csv shards =
    (Cluster.Sharded.flows ~shards ~n:257 ()).Cluster.Sharded.csv
  in
  Alcotest.(check string) "K=2 vs K=3" (csv 2) (csv 3)

(* The sharded scenario end to end: a compressed Fig 3 must produce the
   same published numbers at K=1 and K=2 (the bench [fig3-shards] target
   and CI check {1, 2, 4} at full length and the golden tables). *)
let fig3_sharded_equal () =
  let run shards =
    let scenario =
      { Cluster.Fig3.default_scenario with Cluster.Scenario.shards }
    in
    let r =
      Cluster.Fig3.run ~scenario ~duration:(Des.Time.sec 3)
        ~inject_at:(Des.Time.sec 1) ()
    in
    List.map
      (fun (rr : Cluster.Fig3.run_result) ->
        ( rr.responses,
          rr.actions,
          rr.weights_final,
          List.map
            (fun (s : Cluster.Fig3.series_row) ->
              (s.t_s, s.count, s.p95_us, s.mean_us))
            rr.series ))
      r.runs
  in
  if run 1 <> run 2 then
    Alcotest.fail "fig3 results diverged between shards=1 and shards=2"

let () =
  Alcotest.run "shard"
    [
      ( "windows",
        [
          Alcotest.test_case "K=1 matches plain engine" `Quick
            single_shard_matches_engine;
          Alcotest.test_case "barrier-boundary arrival" `Quick
            cross_shard_barrier_boundary;
          Alcotest.test_case "remote entry across run phases" `Quick
            cross_shard_across_phases;
          Alcotest.test_case "idle gap crossed in O(1) windows" `Quick
            adaptive_idle_gap;
          Alcotest.test_case "post at widened horizon is legal" `Quick
            widened_horizon_boundary_post;
          Alcotest.test_case "tagged post allocates nothing warm" `Quick
            post_remote_tagged_zero_alloc;
          Alcotest.test_case "lookahead violation fails" `Quick
            lookahead_violation_fails;
          Alcotest.test_case "create validates" `Quick create_validates;
          Alcotest.test_case "shard exception re-raised" `Quick
            shard_exception_reraised;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "K=2 equals K=3 (uneven partition)" `Slow
            sharded_flows_two_equals_three;
          Alcotest.test_case "fig3 equal at K=1 and K=2" `Slow
            fig3_sharded_equal;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ sharded_flows_k_invariant; sharded_flows_adaptivity_invariant ]
      );
    ]
