let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let us = Des.Time.us
let ms = Des.Time.ms

(* --- Registry ----------------------------------------------------------- *)

let registry_counters_and_gauges () =
  let r = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter r "lb.pkts" in
  check_int "counter starts at 0" 0 (Telemetry.Registry.Counter.value c);
  Telemetry.Registry.Counter.incr c;
  Telemetry.Registry.Counter.add c 4;
  check_int "incr + add" 5 (Telemetry.Registry.Counter.value c);
  Alcotest.(check (option (float 1e-9)))
    "scalar read by name" (Some 5.0)
    (Telemetry.Registry.value r "lb.pkts");
  let g = Telemetry.Registry.gauge r "lb.queue" in
  check_bool "unset gauge is nan" true
    (Float.is_nan (Telemetry.Registry.Gauge.read g));
  Telemetry.Registry.Gauge.set g 3.5;
  Alcotest.(check (option (float 1e-9)))
    "gauge read" (Some 3.5)
    (Telemetry.Registry.value r "lb.queue");
  let cell = ref 7.0 in
  Telemetry.Registry.gauge_fn r "lb.polled" (fun () -> !cell);
  cell := 9.0;
  Alcotest.(check (option (float 1e-9)))
    "polled gauge reads the callback" (Some 9.0)
    (Telemetry.Registry.value r "lb.polled");
  check_bool "mem finds registered" true (Telemetry.Registry.mem r "lb.pkts");
  check_bool "mem misses unknown" false (Telemetry.Registry.mem r "nope");
  check_bool "value misses unknown" true
    (Telemetry.Registry.value r "nope" = None)

let registry_indexed_metrics () =
  let r = Telemetry.Registry.create () in
  let cs =
    Array.init 3 (fun i -> Telemetry.Registry.counter r ~index:i "s.pkts")
  in
  Telemetry.Registry.Counter.add cs.(1) 11;
  Alcotest.(check (option (float 1e-9)))
    "index 1" (Some 11.0)
    (Telemetry.Registry.value r ~index:1 "s.pkts");
  Alcotest.(check (option (float 1e-9)))
    "index 0 untouched" (Some 0.0)
    (Telemetry.Registry.value r ~index:0 "s.pkts");
  check_bool "unindexed lookup misses the vector" true
    (Telemetry.Registry.value r "s.pkts" = None)

let registry_duplicate_name_raises () =
  let r = Telemetry.Registry.create () in
  ignore (Telemetry.Registry.counter r "dup");
  check_bool "duplicate raises" true
    (try
       ignore (Telemetry.Registry.counter r "dup");
       false
     with Invalid_argument _ -> true);
  (* Same name under a different index is fine. *)
  ignore (Telemetry.Registry.counter r ~index:0 "dup");
  ignore (Telemetry.Registry.counter r ~index:1 "dup");
  check_bool "indexed duplicate raises" true
    (try
       ignore (Telemetry.Registry.gauge r ~index:1 "dup");
       false
     with Invalid_argument _ -> true)

let registry_read_order_and_histograms () =
  let r = Telemetry.Registry.create () in
  ignore (Telemetry.Registry.counter r "a");
  let h = Telemetry.Registry.histogram r "lat_ns" in
  ignore (Telemetry.Registry.counter r "z");
  Stats.Histogram.record h (us 100);
  Stats.Histogram.record h (us 300);
  let names =
    List.map
      (fun s -> s.Telemetry.Registry.metric)
      (Telemetry.Registry.read r)
  in
  Alcotest.(check (list string))
    "registration order, histogram expands to three samples"
    [ "a"; "lat_ns.count"; "lat_ns.mean_ns"; "lat_ns.p95_ns"; "z" ]
    names;
  let find name =
    List.find
      (fun s -> s.Telemetry.Registry.metric = name)
      (Telemetry.Registry.read r)
  in
  Alcotest.(check (float 1e-9)) "count sample" 2.0 (find "lat_ns.count").value;
  Alcotest.(check (float 1.0))
    "mean sample" 200_000.0
    (find "lat_ns.mean_ns").value

(* --- Bus ---------------------------------------------------------------- *)

let bus_subscribe_order () =
  let bus = Telemetry.Bus.create () in
  let log = ref [] in
  ignore (Telemetry.Bus.subscribe bus (fun x -> log := ("a", x) :: !log));
  ignore (Telemetry.Bus.subscribe bus (fun x -> log := ("b", x) :: !log));
  Telemetry.Bus.publish bus 1;
  Alcotest.(check (list (pair string int)))
    "delivered in subscription order"
    [ ("a", 1); ("b", 1) ]
    (List.rev !log)

let bus_unsubscribe () =
  let bus = Telemetry.Bus.create () in
  let hits = ref 0 in
  let sub = Telemetry.Bus.subscribe bus (fun () -> incr hits) in
  ignore (Telemetry.Bus.subscribe bus (fun () -> incr hits));
  Telemetry.Bus.publish bus ();
  check_int "both fire" 2 !hits;
  Telemetry.Bus.unsubscribe bus sub;
  check_int "one subscriber left" 1 (Telemetry.Bus.subscribers bus);
  Telemetry.Bus.publish bus ();
  check_int "only the survivor fires" 3 !hits

let bus_unsubscribe_during_publish () =
  let bus = Telemetry.Bus.create () in
  let hits = ref 0 in
  let sub = ref None in
  (* First subscriber removes the second mid-publish; the second must
     still see the in-flight event (delivery list is snapshotted). *)
  ignore
    (Telemetry.Bus.subscribe bus (fun () ->
         match !sub with
         | Some s -> Telemetry.Bus.unsubscribe bus s
         | None -> ()));
  sub := Some (Telemetry.Bus.subscribe bus (fun () -> incr hits));
  Telemetry.Bus.publish bus ();
  check_int "in-flight delivery unaffected" 1 !hits;
  Telemetry.Bus.publish bus ();
  check_int "gone on the next publish" 1 !hits

let bus_publish_with_lazy () =
  let bus = Telemetry.Bus.create () in
  let built = ref 0 in
  let make () =
    incr built;
    !built
  in
  Telemetry.Bus.publish_with bus make;
  check_int "no subscriber, event never built" 0 !built;
  let seen = ref [] in
  ignore (Telemetry.Bus.subscribe bus (fun v -> seen := v :: !seen));
  Telemetry.Bus.publish_with bus make;
  check_int "subscriber present, event built once" 1 !built;
  Alcotest.(check (list int)) "delivered" [ 1 ] !seen

let bus_empty_publish_zero_alloc () =
  (* The per-packet contract behind the telemetry layer: publishing to a
     bus nobody subscribed to must not allocate at all. Gc.minor_words
     counts every minor-heap word this domain allocates, so a zero delta
     across 10k publishes is a proof, not a heuristic. *)
  let bus = Telemetry.Bus.create () in
  Telemetry.Bus.publish bus 42;
  (* warm up *)
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Telemetry.Bus.publish bus i
  done;
  let words = Gc.minor_words () -. before in
  if words <> 0.0 then
    Alcotest.failf "empty-bus publish allocated %.0f minor words" words;
  (* publish_with with an allocating constructor: still nothing, because
     the constructor must not run. The closure is hoisted out of the
     loop — the datapath does the same with preallocated callbacks. *)
  let pair_bus = Telemetry.Bus.create () in
  let make () = Some 1 in
  Telemetry.Bus.publish_with pair_bus make;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Telemetry.Bus.publish_with pair_bus make
  done;
  let words = Gc.minor_words () -. before in
  if words <> 0.0 then
    Alcotest.failf "empty-bus publish_with allocated %.0f minor words" words

(* --- Snapshot ----------------------------------------------------------- *)

let snapshot_cadence () =
  let engine = Des.Engine.create () in
  let r = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter r "work.done" in
  (* 7 ms does not divide 100 ms, so work ticks never tie with snapshot
     instants and the sampled values are unambiguous. *)
  ignore
    (Des.Timer.every engine ~period:(ms 7) (fun () ->
         Telemetry.Registry.Counter.incr c));
  let snap = Telemetry.Snapshot.start engine r ~interval:(ms 100) in
  Des.Engine.run ~until:(ms 350) engine;
  check_int "one snapshot per interval" 3 (Telemetry.Snapshot.snap_count snap);
  let rows = Telemetry.Snapshot.rows snap in
  check_int "one row per metric per snapshot" 3 (List.length rows);
  let values =
    List.map (fun row -> row.Telemetry.Snapshot.value) rows
  in
  Alcotest.(check (list (float 1e-9)))
    "counter sampled at 100ms cadence" [ 14.0; 28.0; 42.0 ] values;
  List.iteri
    (fun i row ->
      check_int
        (Fmt.str "row %d timestamp" i)
        ((i + 1) * ms 100)
        row.Telemetry.Snapshot.at)
    rows;
  Telemetry.Snapshot.stop snap;
  Des.Engine.run ~until:(ms 600) engine;
  check_int "no snapshots after stop" 3 (Telemetry.Snapshot.snap_count snap)

let snapshot_manual_snap_and_series () =
  let engine = Des.Engine.create () in
  let r = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter r "n" in
  let snap = Telemetry.Snapshot.start engine r ~interval:(ms 100) in
  ignore
    (Des.Engine.schedule engine ~at:(ms 50) (fun () ->
         Telemetry.Registry.Counter.add c 7;
         Telemetry.Snapshot.snap snap));
  Des.Engine.run ~until:(ms 250) engine;
  check_int "2 periodic + 1 manual" 3 (Telemetry.Snapshot.snap_count snap);
  let at_50 =
    List.find
      (fun row -> row.Telemetry.Snapshot.at = ms 50)
      (Telemetry.Snapshot.rows snap)
  in
  Alcotest.(check (float 1e-9))
    "manual snapshot caught the value" 7.0 at_50.Telemetry.Snapshot.value;
  match Telemetry.Snapshot.series snap "n" with
  | None -> Alcotest.fail "per-metric series missing"
  | Some ts ->
      check_bool "series mirrors the samples" true
        (List.length (Stats.Timeseries.rows ts ~q:0.5) > 0)

(* --- Balancer integration ---------------------------------------------- *)

let vip = Netsim.Addr.v 1 80

let balancer_counters_match_bus () =
  let engine = Des.Engine.create () in
  let fabric = Netsim.Fabric.create engine in
  let n = 3 in
  let server_ips = Array.init n (fun i -> 10 + i) in
  let registry = Telemetry.Registry.create () in
  let balancer =
    Inband.Balancer.create fabric ~vip ~server_ips ~table_size:1021
      ~telemetry:registry ()
  in
  Array.iter
    (fun ip ->
      Netsim.Fabric.register fabric ~ip (fun _ -> ());
      Netsim.Fabric.add_link fabric ~src:1 ~dst:ip
        (Netsim.Link.create engine ~delay:(us 10) ()))
    server_ips;
  Netsim.Fabric.register fabric ~ip:100 (fun _ -> ());
  Netsim.Fabric.add_link fabric ~src:100 ~dst:1
    (Netsim.Link.create engine ~delay:(us 10) ());
  (* Count routed packets per server independently through the bus. *)
  let routed = Array.make n 0 in
  ignore
    (Telemetry.Bus.subscribe
       (Inband.Balancer.routed_bus balancer)
       (fun (ev : Inband.Balancer.routed_event) ->
         routed.(ev.server) <- routed.(ev.server) + 1));
  for port = 1 to 12 do
    for _ = 1 to port do
      Netsim.Fabric.send fabric ~from:100
        (Netsim.Packet.make
           ~src:(Netsim.Addr.v 100 port)
           ~dst:vip ~seq:0 ~ack:0 ~flags:Netsim.Packet.flag_ack ~payload:"p")
    done
  done;
  Des.Engine.run ~until:(Des.Time.sec 1) engine;
  let total = 12 * 13 / 2 in
  check_int "all packets forwarded" total
    (Inband.Balancer.packets_forwarded balancer);
  check_int "bus total matches" total (Array.fold_left ( + ) 0 routed);
  for i = 0 to n - 1 do
    check_int
      (Fmt.str "server %d: registry counter = bus count" i)
      routed.(i)
      (Inband.Balancer.packets_to balancer i);
    Alcotest.(check (option (float 1e-9)))
      (Fmt.str "server %d: shared registry sees it" i)
      (Some (float_of_int routed.(i)))
      (Telemetry.Registry.value registry ~index:i "lb.pkts_to")
  done;
  check_bool "flows registered" true
    (Telemetry.Registry.value registry ~index:0 "lb.flows_to" <> None)

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick
            registry_counters_and_gauges;
          Alcotest.test_case "indexed metrics" `Quick registry_indexed_metrics;
          Alcotest.test_case "duplicate name" `Quick
            registry_duplicate_name_raises;
          Alcotest.test_case "read order + histograms" `Quick
            registry_read_order_and_histograms;
        ] );
      ( "bus",
        [
          Alcotest.test_case "subscription order" `Quick bus_subscribe_order;
          Alcotest.test_case "unsubscribe" `Quick bus_unsubscribe;
          Alcotest.test_case "unsubscribe mid-publish" `Quick
            bus_unsubscribe_during_publish;
          Alcotest.test_case "publish_with is lazy" `Quick bus_publish_with_lazy;
          Alcotest.test_case "empty publish allocates nothing" `Quick
            bus_empty_publish_zero_alloc;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "periodic cadence" `Quick snapshot_cadence;
          Alcotest.test_case "manual snap + series" `Quick
            snapshot_manual_snap_and_series;
        ] );
      ( "balancer",
        [
          Alcotest.test_case "registry matches bus" `Quick
            balancer_counters_match_bus;
        ] );
    ]
