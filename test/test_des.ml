(* Tests for the discrete-event simulation core. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Time -------------------------------------------------------------- *)

let time_units () =
  check_int "us" 1_000 (Des.Time.us 1);
  check_int "ms" 1_000_000 (Des.Time.ms 1);
  check_int "sec" 1_000_000_000 (Des.Time.sec 1);
  check_int "ns" 7 (Des.Time.ns 7)

let time_float_roundtrip () =
  let t = Des.Time.of_float_s 1.5 in
  check_int "1.5s in ns" 1_500_000_000 t;
  Alcotest.(check (float 1e-9)) "back to s" 1.5 (Des.Time.to_float_s t);
  Alcotest.(check (float 1e-6)) "us view" 1.5e6 (Des.Time.to_float_us t);
  Alcotest.(check (float 1e-6)) "ms view" 1.5e3 (Des.Time.to_float_ms t)

let time_pp () =
  let s t = Fmt.str "%a" Des.Time.pp t in
  Alcotest.(check string) "ns" "12ns" (s 12);
  Alcotest.(check string) "us" "1.500us" (s 1500);
  Alcotest.(check string) "ms" "2.000ms" (s (Des.Time.ms 2));
  Alcotest.(check string) "s" "3.000s" (s (Des.Time.sec 3))

(* --- Heap -------------------------------------------------------------- *)

let heap_basic () =
  let h = Des.Heap.create ~cmp:Int.compare in
  check_bool "empty" true (Des.Heap.is_empty h);
  List.iter (Des.Heap.add h) [ 5; 3; 8; 1; 9; 2 ];
  check_int "size" 6 (Des.Heap.size h);
  check_int "peek min" 1 (Option.get (Des.Heap.peek h));
  check_int "pop min" 1 (Option.get (Des.Heap.pop h));
  check_int "next min" 2 (Option.get (Des.Heap.pop h));
  check_int "size after pops" 4 (Des.Heap.size h)

let heap_sorted_drain () =
  let h = Des.Heap.create ~cmp:Int.compare in
  List.iter (Des.Heap.add h) [ 4; 4; 1; 1; 7 ];
  Alcotest.(check (list int))
    "to_sorted_list" [ 1; 1; 4; 4; 7 ]
    (Des.Heap.to_sorted_list h);
  check_int "non-destructive" 5 (Des.Heap.size h)

let heap_clear () =
  let h = Des.Heap.create ~cmp:Int.compare in
  List.iter (Des.Heap.add h) [ 1; 2; 3 ];
  Des.Heap.clear h;
  check_bool "cleared" true (Des.Heap.is_empty h);
  check_bool "pop on empty" true (Des.Heap.pop h = None)

let heap_iter_fold () =
  let h = Des.Heap.create ~cmp:Int.compare in
  List.iter (Des.Heap.add h) [ 5; 3; 8; 1; 9; 2 ];
  let seen = ref [] in
  Des.Heap.iter h (fun x -> seen := x :: !seen);
  Alcotest.(check (list int))
    "iter visits every element" [ 1; 2; 3; 5; 8; 9 ]
    (List.sort Int.compare !seen);
  check_int "fold sums all" 28 (Des.Heap.fold h ~init:0 ~f:( + ));
  check_int "fold counts all" 6 (Des.Heap.fold h ~init:0 ~f:(fun n _ -> n + 1));
  check_int "non-destructive" 6 (Des.Heap.size h);
  let empty = Des.Heap.create ~cmp:Int.compare in
  check_int "fold on empty = init" 42
    (Des.Heap.fold empty ~init:42 ~f:(fun _ _ -> 0))

let heap_qcheck =
  QCheck.Test.make ~count:300 ~name:"heap drains every input in sorted order"
    QCheck.(list int)
    (fun xs ->
      let h = Des.Heap.create ~cmp:Int.compare in
      List.iter (Des.Heap.add h) xs;
      let drained =
        List.init (List.length xs) (fun _ -> Option.get (Des.Heap.pop h))
      in
      drained = List.sort Int.compare xs && Des.Heap.is_empty h)

(* --- Rng --------------------------------------------------------------- *)

let rng_deterministic () =
  let a = Des.Rng.create ~seed:42 and b = Des.Rng.create ~seed:42 in
  let draws rng = List.init 20 (fun _ -> Des.Rng.int rng 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (draws a) (draws b)

let rng_split_independent () =
  (* Drawing from one child must not perturb a sibling. *)
  let parent1 = Des.Rng.create ~seed:7 in
  let a1 = Des.Rng.split parent1 ~label:"a" in
  let b1 = Des.Rng.split parent1 ~label:"b" in
  ignore (List.init 100 (fun _ -> Des.Rng.int a1 10));
  let b1_draws = List.init 10 (fun _ -> Des.Rng.int b1 1000) in
  let parent2 = Des.Rng.create ~seed:7 in
  let b2 = Des.Rng.split parent2 ~label:"b" in
  let b2_draws = List.init 10 (fun _ -> Des.Rng.int b2 1000) in
  Alcotest.(check (list int)) "sibling unaffected" b2_draws b1_draws

let rng_split_labels_differ () =
  let parent = Des.Rng.create ~seed:7 in
  let a = Des.Rng.split parent ~label:"a" in
  let b = Des.Rng.split parent ~label:"b" in
  let da = List.init 10 (fun _ -> Des.Rng.int a 1_000_000) in
  let db = List.init 10 (fun _ -> Des.Rng.int b 1_000_000) in
  check_bool "different labels, different streams" true (da <> db)

let rng_bounds =
  QCheck.Test.make ~count:200 ~name:"rng draws stay in range"
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let rng = Des.Rng.create ~seed in
      let v = Des.Rng.int rng bound in
      let f = Des.Rng.float rng 3.5 in
      let u = Des.Rng.uniform rng ~lo:2.0 ~hi:4.0 in
      v >= 0 && v < bound && f >= 0.0 && f < 3.5 && u >= 2.0 && u < 4.0)

let rng_exponential_mean () =
  let rng = Des.Rng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Des.Rng.exponential rng ~mean:50.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean within 5%" true (Float.abs (mean -. 50.0) < 2.5)

let rng_gaussian_moments () =
  let rng = Des.Rng.create ~seed:12 in
  let n = 20_000 in
  let acc = Stats.Welford.create () in
  for _ = 1 to n do
    Stats.Welford.add acc (Des.Rng.gaussian rng ~mean:10.0 ~stddev:3.0)
  done;
  check_bool "mean" true (Float.abs (Stats.Welford.mean acc -. 10.0) < 0.1);
  check_bool "stddev" true (Float.abs (Stats.Welford.stddev acc -. 3.0) < 0.1)

(* --- Engine ------------------------------------------------------------ *)

let engine_orders_events () =
  let e = Des.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Des.Engine.schedule e ~at:(Des.Time.us 30) (note "c"));
  ignore (Des.Engine.schedule e ~at:(Des.Time.us 10) (note "a"));
  ignore (Des.Engine.schedule e ~at:(Des.Time.us 20) (note "b"));
  Des.Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let engine_fifo_same_time () =
  let e = Des.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore
      (Des.Engine.schedule e ~at:(Des.Time.us 5) (fun () -> log := i :: !log))
  done;
  Des.Engine.run e;
  Alcotest.(check (list int))
    "same-instant events fire in scheduling order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let engine_clock_advances () =
  let e = Des.Engine.create () in
  let seen = ref (-1) in
  ignore
    (Des.Engine.schedule e ~at:(Des.Time.ms 3) (fun () ->
         seen := Des.Engine.now e));
  Des.Engine.run e;
  check_int "now inside event" (Des.Time.ms 3) !seen;
  check_int "now after drain" (Des.Time.ms 3) (Des.Engine.now e)

let engine_run_until () =
  let e = Des.Engine.create () in
  let fired = ref 0 in
  ignore (Des.Engine.schedule e ~at:(Des.Time.ms 1) (fun () -> incr fired));
  ignore (Des.Engine.schedule e ~at:(Des.Time.ms 5) (fun () -> incr fired));
  Des.Engine.run ~until:(Des.Time.ms 2) e;
  check_int "only first fired" 1 !fired;
  check_int "clock at limit" (Des.Time.ms 2) (Des.Engine.now e);
  check_int "one pending" 1 (Des.Engine.pending e);
  Des.Engine.run e;
  check_int "rest fired" 2 !fired

let engine_cancel () =
  let e = Des.Engine.create () in
  let fired = ref false in
  let h = Des.Engine.schedule e ~at:(Des.Time.ms 1) (fun () -> fired := true) in
  ignore (Des.Engine.schedule e ~at:(Des.Time.ms 2) (fun () -> ()));
  Des.Engine.cancel h;
  check_int "cancelled excluded while still queued" 1 (Des.Engine.pending e);
  Des.Engine.run e;
  check_bool "cancelled never fires" false !fired;
  check_int "pending zero" 0 (Des.Engine.pending e)

let engine_schedule_in_past_rejected () =
  let e = Des.Engine.create () in
  ignore (Des.Engine.schedule e ~at:(Des.Time.ms 2) (fun () -> ()));
  Des.Engine.run e;
  Alcotest.check_raises "past raises"
    (Invalid_argument "Engine.schedule: at=1.000ms is before now=2.000ms")
    (fun () -> ignore (Des.Engine.schedule e ~at:(Des.Time.ms 1) (fun () -> ())))

let engine_negative_delay_rejected () =
  let e = Des.Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
      ignore (Des.Engine.schedule_after e ~delay:(-1) (fun () -> ())))

let engine_nested_scheduling () =
  let e = Des.Engine.create () in
  let log = ref [] in
  ignore
    (Des.Engine.schedule e ~at:(Des.Time.us 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Des.Engine.schedule_after e ~delay:(Des.Time.us 1) (fun () ->
                log := "inner" :: !log))));
  Des.Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  check_int "events fired" 2 (Des.Engine.events_fired e)

let engine_step () =
  let e = Des.Engine.create () in
  check_bool "step on empty" false (Des.Engine.step e);
  ignore (Des.Engine.schedule e ~at:(Des.Time.us 1) (fun () -> ()));
  check_bool "step fires" true (Des.Engine.step e);
  check_bool "drained" false (Des.Engine.step e)

let engine_qcheck_order =
  QCheck.Test.make ~count:100
    ~name:"engine fires any schedule set in nondecreasing time order"
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let e = Des.Engine.create () in
      let seen = ref [] in
      List.iter
        (fun t ->
          ignore (Des.Engine.schedule e ~at:t (fun () -> seen := t :: !seen)))
        times;
      Des.Engine.run e;
      List.rev !seen = List.sort Int.compare times)

let engine_qcheck_exact_order =
  (* Stronger than nondecreasing times: with a small time range forcing
     plenty of ties, the surviving events must fire in exactly (time,
     scheduling order) — the determinism contract the whole simulator
     rests on — no matter which subset is cancelled. *)
  QCheck.Test.make ~count:200
    ~name:"engine fires in exact (time, seq) order under cancels"
    QCheck.(list (pair (int_bound 50) bool))
    (fun items ->
      let e = Des.Engine.create () in
      let fired = ref [] in
      let handles =
        List.mapi
          (fun i (t, _) ->
            Des.Engine.schedule e ~at:t (fun () -> fired := i :: !fired))
          items
      in
      List.iteri
        (fun i (_, cancelled) ->
          if cancelled then Des.Engine.cancel (List.nth handles i))
        items;
      Des.Engine.run e;
      let expected =
        List.mapi (fun i (t, cancelled) -> (t, i, cancelled)) items
        |> List.filter (fun (_, _, cancelled) -> not cancelled)
        |> List.stable_sort (fun (t1, _, _) (t2, _, _) -> Int.compare t1 t2)
        |> List.map (fun (_, i, _) -> i)
      in
      List.rev !fired = expected)

let engine_cancel_heavy_queue_bounded () =
  (* A timer re-armed per packet is the worst case for tombstones. Times
     beyond the wheel span overflow to the heap, so this exercises the
     tombstone + compaction path: the queue must stay proportional to
     the live event count (compaction invariant: tombstones are at most
     half the queue once it reaches the compaction floor of 64). *)
  let far = Des.Wheel.span_ns * 2 in
  let e = Des.Engine.create () in
  let h = ref None in
  for i = 1 to 20_000 do
    (match !h with Some h -> Des.Engine.cancel h | None -> ());
    h := Some (Des.Engine.schedule e ~at:(i + far) (fun () -> ()));
    if i mod 500 = 0 then begin
      Des.Engine.run ~until:i e;
      let q = Des.Engine.queue_length e and p = Des.Engine.pending e in
      if q > Stdlib.max 64 (2 * p) then
        Alcotest.failf "queue_length %d not bounded by pending %d" q p
    end
  done;
  check_int "overflow events stay out of the wheel" 0 (Des.Engine.wheel_size e);
  check_bool "compaction ran" true (Des.Engine.compactions e > 0);
  check_int "exactly one live event" 1 (Des.Engine.pending e)

(* --- Timing wheel ------------------------------------------------------- *)

let wheel_cancel_heavy_no_tombstones () =
  (* The same re-arm-per-packet workload at RTO-like horizons parks in
     the timing wheel: cancels unlink in O(1), so the heap accumulates
     no tombstones and never compacts. *)
  let e = Des.Engine.create () in
  let h = ref None in
  for i = 1 to 20_000 do
    (match !h with Some h -> Des.Engine.cancel h | None -> ());
    h := Some (Des.Engine.schedule e ~at:(i + Des.Time.ms 200) (fun () -> ()));
    if i mod 500 = 0 then begin
      Des.Engine.run ~until:i e;
      check_int "timer parked in wheel" 1 (Des.Engine.wheel_size e);
      check_int "heap untouched" 0 (Des.Engine.queue_length e)
    end
  done;
  check_int "no compactions" 0 (Des.Engine.compactions e);
  check_int "one live event" 1 (Des.Engine.pending e);
  let fired = ref false in
  (match !h with Some h -> Des.Engine.cancel h | None -> ());
  ignore
    (Des.Engine.schedule_after e ~delay:(Des.Time.ms 1) (fun () ->
         fired := true));
  Des.Engine.run e;
  check_bool "wheel timer fires after drain" true !fired;
  check_int "drained" 0 (Des.Engine.pending e)

let wheel_levels_fire_in_order () =
  (* Delays spanning all three wheel levels plus sub-tick and
     beyond-span overflow times must still fire in exact global time
     order, with ties broken by scheduling order. *)
  let delays =
    [
      (* sub-tick: straight to slot 0 / heap *)
      1;
      Des.Wheel.tick_ns - 1;
      (* level 0 *)
      Des.Wheel.tick_ns * 3;
      (Des.Wheel.tick_ns * 200) + 17;
      (* level 1 *)
      Des.Wheel.tick_ns * 300;
      Des.Wheel.tick_ns * 65_000;
      (* level 2 *)
      Des.Wheel.tick_ns * 70_000;
      Des.Wheel.tick_ns * 16_000_000;
      (* overflow: heap *)
      Des.Wheel.span_ns + 5;
      Des.Wheel.span_ns * 3;
      (* duplicates to exercise (time, seq) ties across routes *)
      Des.Wheel.tick_ns * 3;
      1;
    ]
  in
  let e = Des.Engine.create () in
  let fired = ref [] in
  List.iteri
    (fun i d ->
      ignore
        (Des.Engine.schedule e ~at:d (fun () ->
             fired := (d, i) :: !fired)))
    delays;
  Des.Engine.run e;
  let expected =
    List.mapi (fun i d -> (d, i)) delays
    |> List.stable_sort (fun (d1, _) (d2, _) -> Int.compare d1 d2)
  in
  Alcotest.(check (list (pair int int)))
    "exact (time, seq) order across wheel levels" expected (List.rev !fired);
  check_bool "wheel cascaded" true (Des.Engine.wheel_cascades e > 0)

let wheel_run_until_leaves_far_timers_parked () =
  (* [run ~until] must not flush wheel entries beyond the limit into the
     heap — otherwise parked timers lose their O(1) cancel. *)
  let e = Des.Engine.create () in
  let h =
    Des.Engine.schedule e ~at:(Des.Time.sec 1) (fun () -> assert false)
  in
  Des.Engine.run ~until:(Des.Time.ms 10) e;
  check_int "still parked" 1 (Des.Engine.wheel_size e);
  check_int "heap empty" 0 (Des.Engine.queue_length e);
  check_int "clock at limit" (Des.Time.ms 10) (Des.Engine.now e);
  Des.Engine.cancel h;
  check_int "cancel unlinks" 0 (Des.Engine.pending e);
  Des.Engine.run e;
  check_int "nothing fires" 0 (Des.Engine.events_fired e)

let wheel_cancel_midflight_after_cascade () =
  (* Cancelling an entry that has already cascaded to a lower level (or
     been flushed to the heap) must still be honoured. *)
  let e = Des.Engine.create () in
  let fired = ref 0 in
  let far = Des.Engine.schedule e ~at:(Des.Time.sec 2) (fun () -> incr fired) in
  let near =
    Des.Engine.schedule e ~at:(Des.Time.sec 1) (fun () ->
        incr fired;
        (* [far] has cascaded at least once by now; cancel must unlink
           it wherever it currently lives. *)
        Des.Engine.cancel far)
  in
  ignore near;
  Des.Engine.run e;
  check_int "only the near timer fired" 1 !fired;
  check_int "drained" 0 (Des.Engine.pending e)

let engine_qcheck_exact_order_wheel =
  (* The exact-order property again, over a time range wide enough that
     events are routed through every wheel level and the overflow heap,
     interleaved with cancels. *)
  QCheck.Test.make ~count:100
    ~name:"exact (time, seq) order across wheel levels under cancels"
    QCheck.(list (pair (int_bound (Des.Wheel.span_ns + 100_000)) bool))
    (fun items ->
      let e = Des.Engine.create () in
      let fired = ref [] in
      let handles =
        List.mapi
          (fun i (t, _) ->
            Des.Engine.schedule e ~at:t (fun () -> fired := i :: !fired))
          items
      in
      List.iteri
        (fun i (_, cancelled) ->
          if cancelled then Des.Engine.cancel (List.nth handles i))
        items;
      Des.Engine.run e;
      let expected =
        List.mapi (fun i (t, cancelled) -> (t, i, cancelled)) items
        |> List.filter (fun (_, _, cancelled) -> not cancelled)
        |> List.stable_sort (fun (t1, _, _) (t2, _, _) -> Int.compare t1 t2)
        |> List.map (fun (_, i, _) -> i)
      in
      List.rev !fired = expected)

(* --- Timer ------------------------------------------------------------- *)

let timer_one_shot () =
  let e = Des.Engine.create () in
  let fired = ref 0 in
  let t = Des.Timer.create e ~f:(fun () -> incr fired) in
  Des.Timer.arm t ~delay:(Des.Time.ms 1);
  check_bool "armed" true (Des.Timer.is_armed t);
  Des.Engine.run e;
  check_int "fired once" 1 !fired;
  check_bool "disarmed after fire" false (Des.Timer.is_armed t)

let timer_rearm_resets () =
  let e = Des.Engine.create () in
  let fire_time = ref 0 in
  let t = Des.Timer.create e ~f:(fun () -> fire_time := Des.Engine.now e) in
  Des.Timer.arm t ~delay:(Des.Time.ms 1);
  (* Re-arm at t=0.5ms for 2ms more: expiry moves to 2.5ms. *)
  ignore
    (Des.Engine.schedule e ~at:(Des.Time.us 500) (fun () ->
         Des.Timer.arm t ~delay:(Des.Time.ms 2)));
  Des.Engine.run e;
  check_int "re-armed expiry" (Des.Time.us 2500) !fire_time

let timer_stop () =
  let e = Des.Engine.create () in
  let fired = ref false in
  let t = Des.Timer.create e ~f:(fun () -> fired := true) in
  Des.Timer.arm t ~delay:(Des.Time.ms 1);
  Des.Timer.stop t;
  Des.Timer.stop t;
  Des.Engine.run e;
  check_bool "stopped" false !fired

let timer_every () =
  let e = Des.Engine.create () in
  let fires = ref [] in
  let t =
    Des.Timer.every e ~period:(Des.Time.ms 2) (fun () ->
        fires := Des.Engine.now e :: !fires)
  in
  ignore
    (Des.Engine.schedule e ~at:(Des.Time.ms 7) (fun () -> Des.Timer.stop t));
  Des.Engine.run ~until:(Des.Time.ms 20) e;
  Alcotest.(check (list int))
    "periodic fires until stopped"
    [ Des.Time.ms 2; Des.Time.ms 4; Des.Time.ms 6 ]
    (List.rev !fires)

let timer_every_start () =
  let e = Des.Engine.create () in
  let fires = ref [] in
  let t =
    Des.Timer.every e ~period:(Des.Time.ms 5) ~start:(Des.Time.ms 1)
      (fun () -> fires := Des.Engine.now e :: !fires)
  in
  Des.Engine.run ~until:(Des.Time.ms 12) e;
  Des.Timer.stop t;
  Alcotest.(check (list int))
    "custom start"
    [ Des.Time.ms 1; Des.Time.ms 6; Des.Time.ms 11 ]
    (List.rev !fires)

let () =
  Alcotest.run "des"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick time_units;
          Alcotest.test_case "float roundtrip" `Quick time_float_roundtrip;
          Alcotest.test_case "pp" `Quick time_pp;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick heap_basic;
          Alcotest.test_case "sorted drain" `Quick heap_sorted_drain;
          Alcotest.test_case "clear" `Quick heap_clear;
          Alcotest.test_case "iter and fold" `Quick heap_iter_fold;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ heap_qcheck ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "split independent" `Quick rng_split_independent;
          Alcotest.test_case "split labels differ" `Quick rng_split_labels_differ;
          Alcotest.test_case "exponential mean" `Quick rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick rng_gaussian_moments;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ rng_bounds ] );
      ( "engine",
        [
          Alcotest.test_case "orders events" `Quick engine_orders_events;
          Alcotest.test_case "fifo same time" `Quick engine_fifo_same_time;
          Alcotest.test_case "clock advances" `Quick engine_clock_advances;
          Alcotest.test_case "run until" `Quick engine_run_until;
          Alcotest.test_case "cancel" `Quick engine_cancel;
          Alcotest.test_case "past rejected" `Quick engine_schedule_in_past_rejected;
          Alcotest.test_case "negative delay rejected" `Quick
            engine_negative_delay_rejected;
          Alcotest.test_case "nested scheduling" `Quick engine_nested_scheduling;
          Alcotest.test_case "step" `Quick engine_step;
          Alcotest.test_case "cancel-heavy queue bounded" `Quick
            engine_cancel_heavy_queue_bounded;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ engine_qcheck_order; engine_qcheck_exact_order ] );
      ( "wheel",
        [
          Alcotest.test_case "cancel-heavy leaves heap clean" `Quick
            wheel_cancel_heavy_no_tombstones;
          Alcotest.test_case "levels fire in order" `Quick
            wheel_levels_fire_in_order;
          Alcotest.test_case "run-until keeps far timers parked" `Quick
            wheel_run_until_leaves_far_timers_parked;
          Alcotest.test_case "cancel after cascade" `Quick
            wheel_cancel_midflight_after_cascade;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ engine_qcheck_exact_order_wheel ] );
      ( "timer",
        [
          Alcotest.test_case "one shot" `Quick timer_one_shot;
          Alcotest.test_case "rearm resets" `Quick timer_rearm_resets;
          Alcotest.test_case "stop" `Quick timer_stop;
          Alcotest.test_case "every" `Quick timer_every;
          Alcotest.test_case "every with start" `Quick timer_every_start;
        ] );
    ]
