(* Tests for the network substrate: addresses, flow keys, packets,
   links and the fabric. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let addr a b = Netsim.Addr.v a b

let mk_packet ?(src = addr 100 10000) ?(dst = addr 1 11211) ?(seq = 0)
    ?(ack = 0) ?(flags = Netsim.Packet.flag_ack) ?(payload = "") () =
  Netsim.Packet.make ~src ~dst ~seq ~ack ~flags ~payload

(* --- Addr / Flow_key ---------------------------------------------------- *)

let addr_basics () =
  let a = addr 10 80 in
  check_int "ip" 10 (Netsim.Addr.ip a);
  check_int "port" 80 (Netsim.Addr.port a);
  check_bool "equal" true (Netsim.Addr.equal a (addr 10 80));
  check_bool "not equal" false (Netsim.Addr.equal a (addr 10 81));
  check_bool "compare orders by ip first" true
    (Netsim.Addr.compare (addr 1 9999) (addr 2 0) < 0);
  Alcotest.(check string) "pp" "10:80" (Fmt.str "%a" Netsim.Addr.pp a)

let flow_key_basics () =
  let k1 = Netsim.Flow_key.v ~src:(addr 100 1) ~dst:(addr 1 2) in
  let k2 = Netsim.Flow_key.v ~src:(addr 100 1) ~dst:(addr 1 2) in
  let k3 = Netsim.Flow_key.v ~src:(addr 1 2) ~dst:(addr 100 1) in
  check_bool "equal" true (Netsim.Flow_key.equal k1 k2);
  check_bool "direction matters" false (Netsim.Flow_key.equal k1 k3);
  check_int "equal keys hash equal" (Netsim.Flow_key.hash k1)
    (Netsim.Flow_key.hash k2);
  check_bool "hash non-negative" true (Netsim.Flow_key.hash k3 >= 0)

let flow_key_hash_spreads () =
  (* Sequential ports must not collide into few hash values mod a small
     table — this is what Maglev consumes. *)
  let seen = Hashtbl.create 64 in
  for port = 10_000 to 10_999 do
    let k = Netsim.Flow_key.v ~src:(addr 100 port) ~dst:(addr 1 11211) in
    Hashtbl.replace seen (Netsim.Flow_key.hash k mod 101) ()
  done;
  check_bool "covers most of a 101-slot table" true (Hashtbl.length seen > 90)

let flow_key_table () =
  let module T = Netsim.Flow_key.Table in
  let t = T.create 16 in
  let k1 = Netsim.Flow_key.v ~src:(addr 100 1) ~dst:(addr 1 2) in
  T.add t k1 "x";
  check_bool "found" true
    (T.find_opt t (Netsim.Flow_key.v ~src:(addr 100 1) ~dst:(addr 1 2))
    = Some "x");
  T.remove t k1;
  check_int "removed" 0 (T.length t)

(* --- Flow_table (open addressing) ---------------------------------------- *)

let key_of_port port =
  Netsim.Flow_key.v ~src:(addr 100 port) ~dst:(addr 1 11211)

let flow_table_basics () =
  let module FT = Netsim.Flow_table in
  let t = FT.create ~initial:16 () in
  check_int "miss is -1" (-1) (FT.find t (key_of_port 1));
  FT.add t (key_of_port 1) 42;
  FT.add t (key_of_port 2) 7;
  check_int "two entries" 2 (FT.length t);
  check_int "find 1" 42 (FT.find t (key_of_port 1));
  check_int "find 2" 7 (FT.find t (key_of_port 2));
  check_bool "mem" true (FT.mem t (key_of_port 1));
  (* Replacement updates in place: at most one binding per key. *)
  FT.add t (key_of_port 1) 43;
  check_int "replace keeps length" 2 (FT.length t);
  check_int "replace updates value" 43 (FT.find t (key_of_port 1));
  FT.remove t (key_of_port 1);
  check_int "removed is -1" (-1) (FT.find t (key_of_port 1));
  check_int "length after remove" 1 (FT.length t);
  check_int "tombstone left" 1 (FT.tombstones t);
  FT.remove t (key_of_port 1);
  check_int "double remove is a no-op" 1 (FT.tombstones t)

(* Regression: updating an existing key at high load must not resize —
   only a true insert may grow the table. The bug doubled capacity on
   every update once load crossed 3/4, ballooning a full-but-stable
   table under nothing but refreshes. *)
let flow_table_update_never_resizes () =
  let module FT = Netsim.Flow_table in
  let t = FT.create ~initial:16 () in
  for p = 1 to 12 do
    FT.add t (key_of_port p) p
  done;
  (* 12/16 = 3/4 load: the next true insert grows, an update must not. *)
  check_int "at load" 16 (FT.capacity t);
  for _ = 1 to 100 do
    for p = 1 to 12 do
      FT.add t (key_of_port p) (p + 1000)
    done
  done;
  check_int "updates leave capacity alone" 16 (FT.capacity t);
  check_int "still 12 entries" 12 (FT.length t);
  check_int "updated in place" 1001 (FT.find t (key_of_port 1));
  FT.add t (key_of_port 13) 13;
  check_int "a true insert grows" 32 (FT.capacity t)

let flow_table_tombstone_reuse () =
  let module FT = Netsim.Flow_table in
  let t = FT.create ~initial:16 () in
  for p = 0 to 7 do
    FT.add t (key_of_port p) p
  done;
  for p = 0 to 7 do
    FT.remove t (key_of_port p)
  done;
  check_int "all removed" 0 (FT.length t);
  check_int "8 tombstones" 8 (FT.tombstones t);
  let cap = FT.capacity t in
  (* Probe chains pass the vacated buckets before any empty one, so
     re-insertion reclaims tombstones instead of consuming fresh
     buckets. *)
  for p = 0 to 7 do
    FT.add t (key_of_port p) (100 + p)
  done;
  check_int "tombstones reclaimed" 0 (FT.tombstones t);
  check_int "reuse does not grow the table" cap (FT.capacity t);
  for p = 0 to 7 do
    check_int "value after reuse" (100 + p) (FT.find t (key_of_port p))
  done

let flow_table_resize_and_purge () =
  let module FT = Netsim.Flow_table in
  let t = FT.create ~initial:16 () in
  for p = 0 to 99 do
    FT.add t (key_of_port p) p
  done;
  check_int "100 live" 100 (FT.length t);
  check_bool "capacity grew" true (FT.capacity t >= 128);
  for p = 0 to 99 do
    check_int "binding survives resize" p (FT.find t (key_of_port p))
  done;
  (* Steady-state churn: constant live count, fresh keys each cycle.
     Tombstones accumulate until the load trigger rebuilds in place —
     capacity must hold, not double. *)
  let cap = FT.capacity t in
  for p = 100 to 1100 do
    FT.remove t (key_of_port (p - 100));
    FT.add t (key_of_port p) p
  done;
  check_int "live count constant under churn" 100 (FT.length t);
  check_int "purge holds capacity" cap (FT.capacity t);
  check_bool "tombstones purged periodically" true
    (4 * (FT.length t + FT.tombstones t) < 3 * FT.capacity t);
  let live = ref 0 in
  FT.iter (fun _ v -> if v >= 1001 then incr live) t;
  check_int "iter sees exactly the live bindings" 100 !live

(* --- Packet ------------------------------------------------------------- *)

let packet_wire_size () =
  let p = mk_packet ~payload:"hello" () in
  check_int "wire size" (Netsim.Packet.header_bytes + 5)
    (Netsim.Packet.wire_size p);
  check_int "payload len" 5 (Netsim.Packet.payload_len p)

let packet_pure_ack () =
  check_bool "pure ack" true (Netsim.Packet.is_pure_ack (mk_packet ()));
  check_bool "data is not pure ack" false
    (Netsim.Packet.is_pure_ack (mk_packet ~payload:"x" ()));
  check_bool "syn is not pure ack" false
    (Netsim.Packet.is_pure_ack (mk_packet ~flags:Netsim.Packet.flag_syn_ack ()));
  check_bool "fin is not pure ack" false
    (Netsim.Packet.is_pure_ack (mk_packet ~flags:Netsim.Packet.flag_fin_ack ()))

let packet_ids_unique () =
  let a = mk_packet () and b = mk_packet () in
  check_bool "fresh ids" true (a.Netsim.Packet.id <> b.Netsim.Packet.id)

let packet_flow () =
  let p = mk_packet () in
  let k = Netsim.Packet.flow p in
  check_bool "flow src" true (Netsim.Addr.equal k.Netsim.Flow_key.src (addr 100 10000));
  check_bool "flow dst" true (Netsim.Addr.equal k.Netsim.Flow_key.dst (addr 1 11211))

(* --- Link --------------------------------------------------------------- *)

let with_link ?rate_bps ?queue_capacity ?loss_prob ?jitter ?rng ~delay f =
  let engine = Des.Engine.create () in
  let link =
    Netsim.Link.create engine ~delay ?rate_bps ?queue_capacity ?loss_prob
      ?jitter ?rng ()
  in
  let arrivals = ref [] in
  Netsim.Link.connect link (fun pkt ->
      arrivals := (Des.Engine.now engine, pkt) :: !arrivals);
  f engine link (fun () -> List.rev !arrivals)

let link_delivers_after_delay () =
  with_link ~delay:(Des.Time.us 50) ~rate_bps:0 (fun engine link arrivals ->
      Netsim.Link.send link (mk_packet ());
      Des.Engine.run engine;
      match arrivals () with
      | [ (at, _) ] -> check_int "prop delay only" (Des.Time.us 50) at
      | l -> Alcotest.failf "expected 1 arrival, got %d" (List.length l))

let link_serialization_delay () =
  (* 1000-byte payload + 54B headers at 1 Gb/s = 8.432 us of tx time. *)
  with_link ~delay:(Des.Time.us 10) ~rate_bps:1_000_000_000
    (fun engine link arrivals ->
      Netsim.Link.send link (mk_packet ~payload:(String.make 1000 'x') ());
      Des.Engine.run engine;
      match arrivals () with
      | [ (at, _) ] -> check_int "tx + prop" (8_432 + Des.Time.us 10) at
      | l -> Alcotest.failf "expected 1 arrival, got %d" (List.length l))

let link_fifo_order () =
  with_link ~delay:(Des.Time.us 5) ~rate_bps:1_000_000_000
    (fun engine link arrivals ->
      let p1 = mk_packet ~payload:"aaaa" () in
      let p2 = mk_packet ~payload:"bb" () in
      Netsim.Link.send link p1;
      Netsim.Link.send link p2;
      Des.Engine.run engine;
      match arrivals () with
      | [ (_, q1); (_, q2) ] ->
          check_int "first in first out" p1.Netsim.Packet.id q1.Netsim.Packet.id;
          check_int "second" p2.Netsim.Packet.id q2.Netsim.Packet.id
      | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l))

let link_queue_overflow_drops () =
  with_link ~delay:(Des.Time.us 5) ~rate_bps:1_000_000 ~queue_capacity:2
    (fun engine link arrivals ->
      for _ = 1 to 10 do
        Netsim.Link.send link (mk_packet ~payload:"pppp" ())
      done;
      Des.Engine.run engine;
      (* One in transmission + 2 queued; 7 dropped. *)
      check_int "drops" 7 (Netsim.Link.drops link);
      check_int "delivered" 3 (List.length (arrivals ()));
      check_int "packets_sent counter" 3 (Netsim.Link.packets_sent link))

let link_random_loss () =
  let rng = Des.Rng.create ~seed:9 in
  with_link ~delay:(Des.Time.us 1) ~loss_prob:0.5 ~rng (fun engine link arrivals ->
      for _ = 1 to 1000 do
        Netsim.Link.send link (mk_packet ())
      done;
      Des.Engine.run engine;
      let delivered = List.length (arrivals ()) in
      check_int "deliveries + drops = sends" 1000
        (delivered + Netsim.Link.drops link);
      check_bool "roughly half lost" true (delivered > 400 && delivered < 600))

let link_extra_delay_injection () =
  with_link ~delay:(Des.Time.us 10) ~rate_bps:0 (fun engine link arrivals ->
      Netsim.Link.send link (mk_packet ());
      ignore
        (Des.Engine.schedule engine ~at:(Des.Time.ms 1) (fun () ->
             Netsim.Link.set_extra_delay link (Des.Time.ms 1);
             Netsim.Link.send link (mk_packet ())));
      Des.Engine.run engine;
      match arrivals () with
      | [ (t1, _); (t2, _) ] ->
          check_int "first without extra" (Des.Time.us 10) t1;
          check_int "second with extra"
            (Des.Time.ms 1 + Des.Time.ms 1 + Des.Time.us 10)
            t2;
          check_int "extra_delay getter" (Des.Time.ms 1)
            (Netsim.Link.extra_delay link)
      | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l))

let link_bytes_counted () =
  with_link ~delay:(Des.Time.us 1) (fun engine link _ ->
      let p = mk_packet ~payload:"12345" () in
      Netsim.Link.send link p;
      Des.Engine.run engine;
      check_int "bytes" (Netsim.Packet.wire_size p) (Netsim.Link.bytes_sent link))

let link_requires_connection () =
  let engine = Des.Engine.create () in
  let link = Netsim.Link.create engine ~delay:(Des.Time.us 1) () in
  Alcotest.check_raises "send before connect"
    (Invalid_argument "Link.send: not connected") (fun () ->
      Netsim.Link.send link (mk_packet ()))

let link_bad_config () =
  let engine = Des.Engine.create () in
  Alcotest.check_raises "loss without rng"
    (Invalid_argument "Link.create: loss/jitter require an rng") (fun () ->
      ignore (Netsim.Link.create engine ~delay:1 ~loss_prob:0.1 ()));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Link.create: negative delay") (fun () ->
      ignore (Netsim.Link.create engine ~delay:(-1) ()))

let link_conservation_qcheck =
  QCheck.Test.make ~count:50
    ~name:"link conserves packets: delivered + dropped = sent"
    QCheck.(triple (int_range 1 500) (int_range 0 80) (int_bound 10_000))
    (fun (n, loss_pct, seed) ->
      let engine = Des.Engine.create () in
      let rng = Des.Rng.create ~seed in
      let link =
        Netsim.Link.create engine ~delay:(Des.Time.us 5) ~queue_capacity:32
          ~loss_prob:(float_of_int loss_pct /. 100.0)
          ~rng ()
      in
      let delivered = ref 0 in
      Netsim.Link.connect link (fun _ -> incr delivered);
      for _ = 1 to n do
        Netsim.Link.send link (mk_packet ())
      done;
      Des.Engine.run engine;
      !delivered + Netsim.Link.drops link = n
      && !delivered = Netsim.Link.packets_sent link)

(* --- Fabric ------------------------------------------------------------- *)

let fabric_routes_by_next_hop () =
  let engine = Des.Engine.create () in
  let fabric = Netsim.Fabric.create engine in
  let got_at_2 = ref 0 and got_at_3 = ref 0 in
  Netsim.Fabric.register fabric ~ip:2 (fun _ -> incr got_at_2);
  Netsim.Fabric.register fabric ~ip:3 (fun _ -> incr got_at_3);
  let mk () = Netsim.Link.create engine ~delay:(Des.Time.us 1) () in
  Netsim.Fabric.add_link fabric ~src:1 ~dst:2 (mk ());
  Netsim.Fabric.add_link fabric ~src:1 ~dst:3 (mk ());
  Netsim.Fabric.register fabric ~ip:1 (fun _ -> ());
  (* Default next hop = destination ip. *)
  Netsim.Fabric.send fabric ~from:1 (mk_packet ~src:(addr 1 1) ~dst:(addr 2 1) ());
  (* Explicit next hop overrides (DSR forwarding): dst says 2, carry to 3. *)
  Netsim.Fabric.send fabric ~from:1 ~next_hop:3
    (mk_packet ~src:(addr 1 1) ~dst:(addr 2 1) ());
  Des.Engine.run engine;
  check_int "default hop" 1 !got_at_2;
  check_int "explicit hop" 1 !got_at_3

let fabric_errors () =
  let engine = Des.Engine.create () in
  let fabric = Netsim.Fabric.create engine in
  Netsim.Fabric.register fabric ~ip:2 (fun _ -> ());
  Alcotest.check_raises "reserved ip"
    (Invalid_argument "Fabric.register: ip 0 is reserved") (fun () ->
      Netsim.Fabric.register fabric ~ip:0 (fun _ -> ()));
  Alcotest.check_raises "duplicate ip"
    (Invalid_argument "Fabric.register: ip 2 already registered") (fun () ->
      Netsim.Fabric.register fabric ~ip:2 (fun _ -> ()));
  Alcotest.check_raises "link to unregistered host"
    (Invalid_argument "Fabric.add_link: destination 9 not registered")
    (fun () ->
      Netsim.Fabric.add_link fabric ~src:2 ~dst:9
        (Netsim.Link.create engine ~delay:1 ()))

let fabric_replace_handler () =
  let engine = Des.Engine.create () in
  let fabric = Netsim.Fabric.create engine in
  let first = ref 0 and second = ref 0 in
  Netsim.Fabric.register fabric ~ip:2 (fun _ -> incr first);
  Netsim.Fabric.register fabric ~ip:1 (fun _ -> ());
  Netsim.Fabric.add_link fabric ~src:1 ~dst:2
    (Netsim.Link.create engine ~delay:1 ());
  Netsim.Fabric.replace_handler fabric ~ip:2 (fun _ -> incr second);
  Netsim.Fabric.send fabric ~from:1 (mk_packet ~src:(addr 1 1) ~dst:(addr 2 1) ());
  Des.Engine.run engine;
  check_int "old handler not called" 0 !first;
  check_int "new handler called" 1 !second

let fabric_missing_link () =
  let engine = Des.Engine.create () in
  let fabric = Netsim.Fabric.create engine in
  Netsim.Fabric.register fabric ~ip:1 (fun _ -> ());
  check_bool "send raises" true
    (try
       Netsim.Fabric.send fabric ~from:1
         (mk_packet ~src:(addr 1 1) ~dst:(addr 2 1) ());
       false
     with Invalid_argument _ -> true)

let fabric_link_between () =
  let engine = Des.Engine.create () in
  let fabric = Netsim.Fabric.create engine in
  Netsim.Fabric.register fabric ~ip:2 (fun _ -> ());
  let link = Netsim.Link.create engine ~delay:1 () in
  Netsim.Fabric.add_link fabric ~src:1 ~dst:2 link;
  check_bool "found" true (Netsim.Fabric.link_between fabric ~src:1 ~dst:2 == link);
  check_bool "absent" true
    (try
       ignore (Netsim.Fabric.link_between fabric ~src:2 ~dst:1);
       false
     with Not_found -> true)

(* --- Trace -------------------------------------------------------------- *)

let trace_records () =
  let engine = Des.Engine.create () in
  let trace = Netsim.Trace.create engine in
  ignore
    (Des.Engine.schedule engine ~at:(Des.Time.us 7) (fun () ->
         Netsim.Trace.tap trace (mk_packet ~payload:"ab" ())));
  Des.Engine.run engine;
  check_int "length" 1 (Netsim.Trace.length trace);
  (match Netsim.Trace.entries trace with
  | [ e ] ->
      check_int "timestamp" (Des.Time.us 7) e.Netsim.Trace.at;
      check_int "payload" 2 e.Netsim.Trace.payload_len;
      check_bool "not pure ack" true (not e.Netsim.Trace.pure_ack)
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l));
  let csv = Netsim.Trace.to_csv trace in
  check_bool "csv has header" true
    (String.length csv > 0 && String.sub csv 0 4 = "t_ns");
  Netsim.Trace.clear trace;
  check_int "cleared" 0 (Netsim.Trace.length trace)

let () =
  Alcotest.run "netsim"
    [
      ( "addr",
        [
          Alcotest.test_case "basics" `Quick addr_basics;
          Alcotest.test_case "flow key" `Quick flow_key_basics;
          Alcotest.test_case "hash spreads" `Quick flow_key_hash_spreads;
          Alcotest.test_case "flow table" `Quick flow_key_table;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "basics" `Quick flow_table_basics;
          Alcotest.test_case "tombstone reuse" `Quick flow_table_tombstone_reuse;
          Alcotest.test_case "update never resizes" `Quick
            flow_table_update_never_resizes;
          Alcotest.test_case "resize and purge" `Quick
            flow_table_resize_and_purge;
        ] );
      ( "packet",
        [
          Alcotest.test_case "wire size" `Quick packet_wire_size;
          Alcotest.test_case "pure ack" `Quick packet_pure_ack;
          Alcotest.test_case "unique ids" `Quick packet_ids_unique;
          Alcotest.test_case "flow" `Quick packet_flow;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivers after delay" `Quick
            link_delivers_after_delay;
          Alcotest.test_case "serialization" `Quick link_serialization_delay;
          Alcotest.test_case "fifo" `Quick link_fifo_order;
          Alcotest.test_case "queue overflow" `Quick link_queue_overflow_drops;
          Alcotest.test_case "random loss" `Quick link_random_loss;
          Alcotest.test_case "extra delay injection" `Quick
            link_extra_delay_injection;
          Alcotest.test_case "bytes counted" `Quick link_bytes_counted;
          Alcotest.test_case "requires connection" `Quick link_requires_connection;
          Alcotest.test_case "bad config" `Quick link_bad_config;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ link_conservation_qcheck ] );
      ( "fabric",
        [
          Alcotest.test_case "routes by next hop" `Quick fabric_routes_by_next_hop;
          Alcotest.test_case "errors" `Quick fabric_errors;
          Alcotest.test_case "replace handler" `Quick fabric_replace_handler;
          Alcotest.test_case "missing link" `Quick fabric_missing_link;
          Alcotest.test_case "link_between" `Quick fabric_link_between;
        ] );
      ("trace", [ Alcotest.test_case "records" `Quick trace_records ]);
    ]
