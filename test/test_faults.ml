(* Tests for the fault layer: the timeline grammar, the injector's
   apply/revert mechanics against links, servers and the controller,
   and the drop-accounting split the loss faults rely on. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let us = Des.Time.us
let ms = Des.Time.ms

(* --- Timeline grammar ---------------------------------------------------- *)

let spec =
  {|# a demo timeline
100ms  link:lb->s1  delay+1ms
2s     link:lb->s1  spike+2ms   for 200ms   # trailing comment
3s     link:lb->s0  ramp+1ms    for 1s
5s     link:c0->lb  loss=0.05   for 500ms
6s     server:0     slow*2.5    for 2s
8s     server:1     pause       for 10ms
9s     backend:1    drain       for 3s
|}

let timeline_parses_spec () =
  match Faults.Timeline.parse spec with
  | Error msg -> Alcotest.fail msg
  | Ok events ->
      check_int "seven events" 7 (List.length events);
      let e = List.hd events in
      check_int "first at 100ms" (ms 100) e.Faults.Timeline.at;
      check_bool "first is a link delay" true
        (e.Faults.Timeline.target = Faults.Timeline.Link "lb->s1"
        && e.Faults.Timeline.fault = Faults.Timeline.Delay (ms 1)
        && e.Faults.Timeline.duration = None);
      (* Last line: drain with duration. *)
      let last = List.nth events 6 in
      check_bool "drain on backend 1 for 3s" true
        (last.Faults.Timeline.target = Faults.Timeline.Backend 1
        && last.Faults.Timeline.fault = Faults.Timeline.Drain
        && last.Faults.Timeline.duration = Some (Des.Time.sec 3))

let timeline_round_trips () =
  match Faults.Timeline.parse spec with
  | Error msg -> Alcotest.fail msg
  | Ok events ->
      List.iter
        (fun e ->
          match Faults.Timeline.parse_line (Faults.Timeline.to_spec e) with
          | Ok (Some e') ->
              check_bool (Faults.Timeline.to_spec e) true (e = e')
          | Ok None -> Alcotest.fail "round trip lost the event"
          | Error msg -> Alcotest.fail msg)
        events

let timeline_sorts_by_time () =
  let text = "2s server:0 slow*2\n1s server:1 slow*3\n" in
  match Faults.Timeline.parse text with
  | Error msg -> Alcotest.fail msg
  | Ok events ->
      check_int "earlier event first" (Des.Time.sec 1)
        (List.hd events).Faults.Timeline.at

let timeline_rejects_bad_lines () =
  let bad line =
    match Faults.Timeline.parse line with
    | Error _ -> true
    | Ok _ -> false
  in
  check_bool "bad time" true (bad "1parsec link:x delay+1ms");
  check_bool "bad target" true (bad "1s lunk:x delay+1ms");
  check_bool "bad fault" true (bad "1s link:x wobble+1ms");
  check_bool "spike needs duration" true (bad "1s link:x spike+1ms");
  check_bool "ramp needs duration" true (bad "1s link:x ramp+1ms");
  check_bool "pause needs duration" true (bad "1s server:0 pause");
  check_bool "loss out of range" true (bad "1s link:x loss=1.0");
  check_bool "slow must be positive" true (bad "1s server:0 slow*0");
  check_bool "pause on a link" true (bad "1s link:x pause for 1ms");
  check_bool "drain on a server" true (bad "1s server:0 drain");
  check_bool "loss on a server" true (bad "1s server:0 loss=0.1");
  check_bool "trailing junk" true (bad "1s link:x delay+1ms for 1ms extra");
  check_bool "negative server index" true (bad "1s server:-1 slow*2")

let timeline_errors_name_the_line () =
  match Faults.Timeline.parse "1s server:0 slow*2\nnonsense\n" with
  | Error msg ->
      check_bool (Fmt.str "error names line 2: %s" msg) true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")
  | Ok _ -> Alcotest.fail "expected a parse error"

let timeline_event_validates () =
  Alcotest.check_raises "spike without duration"
    (Invalid_argument "Faults.Timeline.event: spike needs a 'for DURATION'")
    (fun () ->
      ignore
        (Faults.Timeline.event ~at:0 ~target:(Faults.Timeline.Link "l")
           ~fault:(Faults.Timeline.Spike (ms 1)) ()))

(* --- Injector: link faults ----------------------------------------------- *)

let mk_link ?(with_rng = true) ?(loss = 0.0) ?(capacity = 1024) ?(rate = 0)
    engine registry =
  let link =
    Netsim.Link.create engine ~delay:(us 10) ~rate_bps:rate
      ~queue_capacity:capacity ~loss_prob:loss
      ?rng:(if with_rng then Some (Des.Rng.create ~seed:42) else None)
      ~telemetry:registry ()
  in
  Netsim.Link.connect link (fun _ -> ());
  link

let link_env name link =
  {
    Faults.Injector.link = (fun n -> if n = name then Some link else None);
    server = (fun _ -> None);
    controller = (fun _ -> None);
  }

let injector_spike_applies_and_reverts () =
  let engine = Des.Engine.create () in
  let registry = Telemetry.Registry.create () in
  let link = mk_link engine registry in
  let timeline =
    [
      Faults.Timeline.event ~at:(ms 1) ~target:(Faults.Timeline.Link "l")
        ~fault:(Faults.Timeline.Spike (us 500)) ~duration:(ms 2) ();
    ]
  in
  let inj =
    Faults.Injector.install engine ~env:(link_env "l" link) ~telemetry:registry
      timeline
  in
  Des.Engine.run ~until:(ms 2) engine;
  check_int "spike applied" (us 500) (Netsim.Link.extra_delay link);
  check_int "one active fault" 1 (Faults.Injector.active_faults inj);
  Des.Engine.run ~until:(ms 5) engine;
  check_int "spike reverted" 0 (Netsim.Link.extra_delay link);
  check_int "no active faults" 0 (Faults.Injector.active_faults inj);
  (match Faults.Injector.intervals inj with
  | [ i ] ->
      check_int "applied at 1ms" (ms 1) i.Faults.Injector.applied_at;
      Alcotest.(check (option int)) "reverted at 3ms" (Some (ms 3))
        i.Faults.Injector.reverted_at
  | l -> Alcotest.fail (Fmt.str "expected one interval, got %d" (List.length l)));
  Alcotest.(check (option (float 0.0))) "fault.applied metric" (Some 1.0)
    (Telemetry.Registry.value registry "fault.applied");
  Alcotest.(check (option (float 0.0))) "fault.reverted metric" (Some 1.0)
    (Telemetry.Registry.value registry "fault.reverted");
  Alcotest.(check (option (float 0.0))) "fault.active gauge" (Some 0.0)
    (Telemetry.Registry.value registry "fault.active")

let injector_delay_restores_previous () =
  (* A temporary delay must restore what was there before, not zero. *)
  let engine = Des.Engine.create () in
  let link = mk_link engine (Telemetry.Registry.create ()) in
  Netsim.Link.set_extra_delay link (us 100);
  let timeline =
    [
      Faults.Timeline.event ~at:(ms 1) ~target:(Faults.Timeline.Link "l")
        ~fault:(Faults.Timeline.Delay (ms 1)) ~duration:(ms 1) ();
    ]
  in
  ignore (Faults.Injector.install engine ~env:(link_env "l" link) timeline);
  Des.Engine.run ~until:(ms 1 + us 1) engine;
  check_int "delay applied" (ms 1) (Netsim.Link.extra_delay link);
  Des.Engine.run ~until:(ms 3) engine;
  check_int "previous extra delay restored" (us 100)
    (Netsim.Link.extra_delay link)

let injector_loss_burst_reverts () =
  let engine = Des.Engine.create () in
  let link = mk_link engine (Telemetry.Registry.create ()) in
  let timeline =
    [
      Faults.Timeline.event ~at:(ms 1) ~target:(Faults.Timeline.Link "l")
        ~fault:(Faults.Timeline.Loss 0.25) ~duration:(ms 2) ();
    ]
  in
  ignore (Faults.Injector.install engine ~env:(link_env "l" link) timeline);
  Des.Engine.run ~until:(ms 2) engine;
  Alcotest.(check (float 1e-9)) "loss on" 0.25 (Netsim.Link.loss_prob link);
  Des.Engine.run ~until:(ms 4) engine;
  Alcotest.(check (float 1e-9)) "loss off" 0.0 (Netsim.Link.loss_prob link)

let injector_ramp_reaches_target () =
  let engine = Des.Engine.create () in
  let link = mk_link engine (Telemetry.Registry.create ()) in
  let timeline =
    [
      Faults.Timeline.event ~at:(ms 1) ~target:(Faults.Timeline.Link "l")
        ~fault:(Faults.Timeline.Ramp (us 1600)) ~duration:(ms 16) ();
    ]
  in
  let inj = Faults.Injector.install engine ~env:(link_env "l" link) timeline in
  Des.Engine.run ~until:(ms 9) engine;
  let mid = Netsim.Link.extra_delay link in
  check_bool (Fmt.str "midway between 0 and target (%d)" mid) true
    (mid > 0 && mid < us 1600);
  Des.Engine.run ~until:(ms 20) engine;
  check_int "ramp reached target" (us 1600) (Netsim.Link.extra_delay link);
  (* Ramps persist: no revert, and the interval stays open. *)
  match Faults.Injector.intervals inj with
  | [ i ] ->
      Alcotest.(check (option int)) "never reverted" None
        i.Faults.Injector.reverted_at
  | _ -> Alcotest.fail "expected one interval"

let injector_rejects_unknown_targets () =
  let engine = Des.Engine.create () in
  let link = mk_link engine (Telemetry.Registry.create ()) in
  let ev target fault =
    [ Faults.Timeline.event ~at:(ms 1) ~target ~fault ~duration:(ms 1) () ]
  in
  let raises timeline =
    match
      Faults.Injector.install engine ~env:(link_env "l" link) timeline
    with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "unknown link" true
    (raises (ev (Faults.Timeline.Link "nope") (Faults.Timeline.Delay (ms 1))));
  check_bool "unknown server" true
    (raises (ev (Faults.Timeline.Server 0) (Faults.Timeline.Slow 2.0)));
  check_bool "no controller" true
    (raises (ev (Faults.Timeline.Backend 0) Faults.Timeline.Drain));
  check_int "nothing scheduled by failed installs" 0 (Des.Engine.pending engine)

let injector_rejects_loss_without_rng () =
  let engine = Des.Engine.create () in
  let link = mk_link ~with_rng:false engine (Telemetry.Registry.create ()) in
  let timeline =
    [
      Faults.Timeline.event ~at:(ms 1) ~target:(Faults.Timeline.Link "l")
        ~fault:(Faults.Timeline.Loss 0.5) ~duration:(ms 1) ();
    ]
  in
  check_bool "install refuses" true
    (match Faults.Injector.install engine ~env:(link_env "l" link) timeline with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Injector: server faults --------------------------------------------- *)

let mk_server engine =
  let fabric = Netsim.Fabric.create engine in
  Memcache.Server.create fabric ~host_ip:10
    ~listen_addr:(Netsim.Addr.v 1 11211)
    ~rng:(Des.Rng.create ~seed:7)
    ()

let server_env server =
  {
    Faults.Injector.link = (fun _ -> None);
    server = (fun i -> if i = 0 then Some server else None);
    controller = (fun _ -> None);
  }

let injector_slow_applies_and_reverts () =
  let engine = Des.Engine.create () in
  let server = mk_server engine in
  let timeline =
    [
      Faults.Timeline.event ~at:(ms 1) ~target:(Faults.Timeline.Server 0)
        ~fault:(Faults.Timeline.Slow 2.5) ~duration:(ms 2) ();
    ]
  in
  ignore (Faults.Injector.install engine ~env:(server_env server) timeline);
  Des.Engine.run ~until:(ms 2) engine;
  Alcotest.(check (float 1e-9)) "slowed" 2.5 (Memcache.Server.slow_factor server);
  Des.Engine.run ~until:(ms 4) engine;
  Alcotest.(check (float 1e-9)) "nominal again" 1.0
    (Memcache.Server.slow_factor server)

let injector_pause_records_interval () =
  let engine = Des.Engine.create () in
  let server = mk_server engine in
  let timeline =
    [
      Faults.Timeline.event ~at:(ms 1) ~target:(Faults.Timeline.Server 0)
        ~fault:Faults.Timeline.Pause ~duration:(ms 2) ();
    ]
  in
  let inj = Faults.Injector.install engine ~env:(server_env server) timeline in
  Des.Engine.run ~until:(ms 5) engine;
  match Faults.Injector.intervals inj with
  | [ i ] ->
      Alcotest.(check (option int)) "pause cleared at 3ms" (Some (ms 3))
        i.Faults.Injector.reverted_at
  | _ -> Alcotest.fail "expected one interval"

(* --- Interference force/clear -------------------------------------------- *)

let interference_force_and_clear () =
  let engine = Des.Engine.create () in
  let i = Memcache.Interference.none engine in
  check_int "idle" 0 (Memcache.Interference.extra_delay i);
  Memcache.Interference.force i ~until:(ms 2);
  check_int "paused for 2ms" (ms 2) (Memcache.Interference.extra_delay i);
  (* A shorter overlapping pause must not cut the current one short. *)
  Memcache.Interference.force i ~until:(ms 1);
  check_int "longest pause wins" (ms 2) (Memcache.Interference.extra_delay i);
  Des.Engine.run ~until:(ms 1) engine;
  check_int "half absorbed" (ms 1) (Memcache.Interference.extra_delay i);
  Memcache.Interference.clear i;
  check_int "cleared" 0 (Memcache.Interference.extra_delay i);
  check_bool "pauses counted" true (Memcache.Interference.pauses_so_far i >= 1)

(* --- Link drop accounting ------------------------------------------------- *)

let mk_packet () =
  Netsim.Packet.make
    ~src:(Netsim.Addr.v 100 10000)
    ~dst:(Netsim.Addr.v 1 11211)
    ~seq:0 ~ack:0 ~flags:Netsim.Packet.flag_ack ~payload:"x"

let link_splits_loss_drops () =
  let engine = Des.Engine.create () in
  let registry = Telemetry.Registry.create () in
  let link = mk_link ~loss:0.5 engine registry in
  for _ = 1 to 200 do
    Netsim.Link.send link (mk_packet ())
  done;
  Des.Engine.run engine;
  let loss = Netsim.Link.loss_drops link in
  check_bool (Fmt.str "random losses happened (%d)" loss) true (loss > 50);
  check_int "no queue drops on an infinite link" 0
    (Netsim.Link.queue_drops link);
  check_int "drops is the sum" loss (Netsim.Link.drops link);
  Alcotest.(check (option (float 0.0))) "link.drops gauge is the sum"
    (Some (float_of_int loss))
    (Telemetry.Registry.value registry "link.drops")

let link_splits_queue_drops () =
  let engine = Des.Engine.create () in
  let registry = Telemetry.Registry.create () in
  (* 8 kbit/s: ~54ms per 54-byte packet, queue of 1: a burst of 10
     keeps 2 (in service + queued) and tail-drops the rest. *)
  let link = mk_link ~capacity:1 ~rate:8000 engine registry in
  for _ = 1 to 10 do
    Netsim.Link.send link (mk_packet ())
  done;
  Des.Engine.run engine;
  check_int "burst tail-dropped" 8 (Netsim.Link.queue_drops link);
  check_int "no loss drops" 0 (Netsim.Link.loss_drops link);
  check_int "drops is the sum" 8 (Netsim.Link.drops link);
  check_int "the rest got through" 2 (Netsim.Link.packets_sent link)

(* --- Controller drain/restore --------------------------------------------- *)

let mk_controller ?(n = 3) () =
  let config =
    {
      Inband.Config.default with
      Inband.Config.control_interval = 0;
      relative_threshold = 2.0;
    }
  in
  let names = Array.init n (fun i -> Fmt.str "s%d" i) in
  let pool = Maglev.Pool.create ~table_size:1021 ~names () in
  (Inband.Controller.create ~config ~pool (), pool)

let controller_drain_pins_to_floor () =
  let c, _pool = mk_controller () in
  Inband.Controller.drain c ~now:(ms 1) ~server:2;
  check_bool "drained" true (Inband.Controller.is_drained c 2);
  let w = Inband.Controller.weights c in
  check_bool (Fmt.str "pinned near the floor (%.4f)" w.(2)) true (w.(2) < 0.02);
  Alcotest.(check (float 1e-6)) "sum 1" 1.0 (Array.fold_left ( +. ) 0.0 w);
  (* Draining twice is idempotent. *)
  Inband.Controller.drain c ~now:(ms 2) ~server:2;
  check_bool "still drained" true (Inband.Controller.is_drained c 2)

let controller_drained_excluded_from_shift () =
  let c, _pool = mk_controller () in
  Inband.Controller.drain c ~now:(ms 1) ~server:2;
  (* Server 0 is worst; the shifted weight must all go to server 1 —
     server 2 is drained and must stay at the floor even though its
     estimate is best. *)
  ignore (Inband.Controller.on_sample c ~now:(ms 2) ~server:1 (us 100));
  ignore (Inband.Controller.on_sample c ~now:(ms 3) ~server:2 (us 105));
  (match Inband.Controller.on_sample c ~now:(ms 4) ~server:0 (us 900) with
  | Some action -> check_int "victim is server 0" 0 action.Inband.Controller.victim
  | None -> Alcotest.fail "expected a shift");
  let w = Inband.Controller.weights c in
  check_bool "drained stayed at the floor" true (w.(2) < 0.02);
  check_bool "recipient gained" true (w.(1) > 0.34)

let controller_restore_reenters () =
  let c, _pool = mk_controller () in
  Inband.Controller.drain c ~now:(ms 1) ~server:2;
  Inband.Controller.restore c ~now:(ms 2) ~server:2;
  check_bool "no longer drained" false (Inband.Controller.is_drained c 2);
  let w = Inband.Controller.weights c in
  check_bool (Fmt.str "meaningful share back (%.3f)" w.(2)) true (w.(2) > 0.2);
  (* Restoring an undrained backend is a no-op. *)
  Inband.Controller.restore c ~now:(ms 3) ~server:0;
  check_bool "range check still applies" true
    (match Inband.Controller.drain c ~now:(ms 4) ~server:9 with
    | () -> false
    | exception Invalid_argument _ -> true)

let injector_drain_via_timeline () =
  let c, _pool = mk_controller () in
  let engine = Des.Engine.create () in
  let env =
    {
      Faults.Injector.link = (fun _ -> None);
      server = (fun _ -> None);
      controller = (fun i -> if i < 3 then Some c else None);
    }
  in
  let timeline =
    [
      Faults.Timeline.event ~at:(ms 1) ~target:(Faults.Timeline.Backend 1)
        ~fault:Faults.Timeline.Drain ~duration:(ms 2) ();
    ]
  in
  ignore (Faults.Injector.install engine ~env timeline);
  Des.Engine.run ~until:(ms 2) engine;
  check_bool "drained mid-fault" true (Inband.Controller.is_drained c 1);
  Des.Engine.run ~until:(ms 4) engine;
  check_bool "restored after" false (Inband.Controller.is_drained c 1)

let () =
  Alcotest.run "faults"
    [
      ( "timeline",
        [
          Alcotest.test_case "parses the demo spec" `Quick timeline_parses_spec;
          Alcotest.test_case "round trips" `Quick timeline_round_trips;
          Alcotest.test_case "sorts by time" `Quick timeline_sorts_by_time;
          Alcotest.test_case "rejects bad lines" `Quick
            timeline_rejects_bad_lines;
          Alcotest.test_case "errors name the line" `Quick
            timeline_errors_name_the_line;
          Alcotest.test_case "event validates" `Quick timeline_event_validates;
        ] );
      ( "injector",
        [
          Alcotest.test_case "spike applies and reverts" `Quick
            injector_spike_applies_and_reverts;
          Alcotest.test_case "delay restores previous" `Quick
            injector_delay_restores_previous;
          Alcotest.test_case "loss burst reverts" `Quick
            injector_loss_burst_reverts;
          Alcotest.test_case "ramp reaches target" `Quick
            injector_ramp_reaches_target;
          Alcotest.test_case "rejects unknown targets" `Quick
            injector_rejects_unknown_targets;
          Alcotest.test_case "rejects loss without rng" `Quick
            injector_rejects_loss_without_rng;
          Alcotest.test_case "slow applies and reverts" `Quick
            injector_slow_applies_and_reverts;
          Alcotest.test_case "pause records interval" `Quick
            injector_pause_records_interval;
          Alcotest.test_case "drain via timeline" `Quick
            injector_drain_via_timeline;
        ] );
      ( "substrate",
        [
          Alcotest.test_case "interference force/clear" `Quick
            interference_force_and_clear;
          Alcotest.test_case "loss drops split" `Quick link_splits_loss_drops;
          Alcotest.test_case "queue drops split" `Quick link_splits_queue_drops;
        ] );
      ( "drain",
        [
          Alcotest.test_case "pins to floor" `Quick controller_drain_pins_to_floor;
          Alcotest.test_case "excluded from shift" `Quick
            controller_drained_excluded_from_shift;
          Alcotest.test_case "restore reenters" `Quick controller_restore_reenters;
        ] );
    ]
